type solver = [ `Multigrid | `Power | `Gauss_seidel ]

type t = {
  grid : int;
  phases : int;
  counter : int;
  sigma_w : float;
  drift_mean : float;
  drift_max : int;
  max_run : int;
  p_transition : float;
  solver : solver;
  smoother : Markov.Multigrid.smoother;
  backend : Cdr_op.kind;
}

(* the grid/phases/counter/sigma/max_run defaults are Config.default's (the
   paper's running example); drift and transition probability match what the
   cdr_analyze flags have always defaulted to *)
let default =
  {
    grid = Cdr.Config.default.Cdr.Config.grid_points;
    phases = Cdr.Config.default.Cdr.Config.n_phases;
    counter = Cdr.Config.default.Cdr.Config.counter_length;
    sigma_w = Cdr.Config.default.Cdr.Config.sigma_w;
    drift_mean = 0.1;
    drift_max = 2;
    max_run = Cdr.Config.default.Cdr.Config.max_run;
    p_transition = 0.5;
    solver = `Multigrid;
    smoother = `Lex;
    backend = `Csr;
  }

let to_config p =
  let cfg =
    {
      Cdr.Config.default with
      Cdr.Config.grid_points = p.grid;
      n_phases = p.phases;
      counter_length = p.counter;
      sigma_w = p.sigma_w;
      nr = Prob.Jitter.drift ~max_steps:p.drift_max ~mean_steps:p.drift_mean ();
      max_run = p.max_run;
      p01 = p.p_transition;
      p10 = p.p_transition;
    }
  in
  match Cdr.Config.validate cfg with Ok () -> Ok cfg | Error msg -> Error msg

let solver_of_string = function
  | "multigrid" -> Some `Multigrid
  | "power" -> Some `Power
  | "gauss-seidel" -> Some `Gauss_seidel
  | _ -> None

let string_of_solver = function
  | `Multigrid -> "multigrid"
  | `Power -> "power"
  | `Gauss_seidel -> "gauss-seidel"

let smoother_of_string = function "lex" -> Some `Lex | "colored" -> Some `Colored | _ -> None

let string_of_smoother = function `Lex -> "lex" | `Colored -> "colored"

let backend_of_string = Cdr_op.kind_of_string

let string_of_backend = Cdr_op.kind_string

(* ---------- JSON codec ---------- *)

let int_field name v =
  match v with
  | Cdr_obs.Jsonl.Num f when Float.is_integer f && Float.abs f < 1e9 -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S must be an integer" name)

let float_field name v =
  match v with
  | Cdr_obs.Jsonl.Num f -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let enum_field name of_string v =
  match v with
  | Cdr_obs.Jsonl.Str s -> (
      match of_string s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: unknown value %S" name s))
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let of_json ?(defaults = default) json =
  match json with
  | Cdr_obs.Jsonl.Null -> Ok defaults
  | Cdr_obs.Jsonl.Obj fields ->
      let ( let* ) = Result.bind in
      List.fold_left
        (fun acc (key, v) ->
          let* p = acc in
          match key with
          | "grid" ->
              let* x = int_field key v in
              Ok { p with grid = x }
          | "phases" ->
              let* x = int_field key v in
              Ok { p with phases = x }
          | "counter" ->
              let* x = int_field key v in
              Ok { p with counter = x }
          | "sigma_w" ->
              let* x = float_field key v in
              Ok { p with sigma_w = x }
          | "drift_mean" ->
              let* x = float_field key v in
              Ok { p with drift_mean = x }
          | "drift_max" ->
              let* x = int_field key v in
              Ok { p with drift_max = x }
          | "max_run" ->
              let* x = int_field key v in
              Ok { p with max_run = x }
          | "p_transition" ->
              let* x = float_field key v in
              Ok { p with p_transition = x }
          | "solver" ->
              let* x = enum_field key solver_of_string v in
              Ok { p with solver = x }
          | "smoother" ->
              let* x = enum_field key smoother_of_string v in
              Ok { p with smoother = x }
          | "backend" ->
              let* x = enum_field key backend_of_string v in
              Ok { p with backend = x }
          | other -> Error (Printf.sprintf "unknown parameter field %S" other))
        (Ok defaults) fields
  | _ -> Error "\"params\" must be a JSON object"

let to_json p =
  Cdr_obs.Jsonl.Obj
    [
      ("grid", Num (float_of_int p.grid));
      ("phases", Num (float_of_int p.phases));
      ("counter", Num (float_of_int p.counter));
      ("sigma_w", Num p.sigma_w);
      ("drift_mean", Num p.drift_mean);
      ("drift_max", Num (float_of_int p.drift_max));
      ("max_run", Num (float_of_int p.max_run));
      ("p_transition", Num p.p_transition);
      ("solver", Str (string_of_solver p.solver));
      ("smoother", Str (string_of_smoother p.smoother));
      ("backend", Str (string_of_backend p.backend));
    ]

let model_key p =
  Printf.sprintf "g%d.ph%d.k%d.dr%d.run%d" p.grid p.phases p.counter p.drift_max p.max_run

let structure_key p =
  Printf.sprintf "%s.%s.%s.%s" (model_key p) (string_of_solver p.solver)
    (string_of_smoother p.smoother) (string_of_backend p.backend)

type kind = Analyze | Sweep of int list | Sigma of float list | Slip | Env | Scenarios | Stats

type request = {
  id : string;
  kind : kind;
  params : Params.t;
  deadline_ms : float option;
  hold_ms : float option;
}

type error_code = [ `Bad_request | `Overloaded | `Timeout | `Internal ]

let code_string = function
  | `Bad_request -> "bad_request"
  | `Overloaded -> "overloaded"
  | `Timeout -> "timeout"
  | `Internal -> "internal"

let kind_name = function
  | Analyze -> "analyze"
  | Sweep _ -> "sweep"
  | Sigma _ -> "sigma"
  | Slip -> "slip"
  | Env -> "env"
  | Scenarios -> "scenarios"
  | Stats -> "stats"

(* historical defaults of the cdr_analyze sweep/sigma subcommands *)
let default_lengths = [ 2; 4; 8; 16; 32 ]
let default_sigmas = [ 0.04; 0.05; 0.0625; 0.08; 0.1 ]

let allowed_keys = [ "id"; "kind"; "params"; "lengths"; "values"; "deadline_ms"; "hold_ms" ]

let int_list name v =
  match v with
  | Cdr_obs.Jsonl.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Cdr_obs.Jsonl.Num f :: rest when Float.is_integer f && Float.abs f < 1e9 ->
            go (int_of_float f :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of integers" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S must be a list of integers" name)

let float_list name v =
  match v with
  | Cdr_obs.Jsonl.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Cdr_obs.Jsonl.Num f :: rest -> go (f :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of numbers" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S must be a list of numbers" name)

let pos_float name v =
  match v with
  | Cdr_obs.Jsonl.Num f when f > 0. -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a positive number" name)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let parse_with_id ~id fields =
  let fail msg = Error (Some id, msg) in
  let lift = function Ok x -> Ok x | Error msg -> fail msg in
  let find k = List.assoc_opt k fields in
  match List.find_opt (fun (k, _) -> not (List.mem k allowed_keys)) fields with
  | Some (k, _) -> fail (Printf.sprintf "unknown request field %S" k)
  | None -> (
      let* params =
        lift (Params.of_json (Option.value (find "params") ~default:Cdr_obs.Jsonl.Null))
      in
      let opt_field key =
        match find key with
        | None -> Ok None
        | Some v ->
            let* f = lift (pos_float key v) in
            Ok (Some f)
      in
      let* deadline_ms = opt_field "deadline_ms" in
      let* hold_ms = opt_field "hold_ms" in
      let reject_extra key kind_s =
        match find key with
        | Some _ -> fail (Printf.sprintf "field %S is only valid for %S requests" key kind_s)
        | None -> Ok ()
      in
      match find "kind" with
      | Some (Cdr_obs.Jsonl.Str kind_s) ->
          let* kind =
            match kind_s with
            | "analyze" | "slip" ->
                let* () = reject_extra "lengths" "sweep" in
                let* () = reject_extra "values" "sigma" in
                Ok (if kind_s = "analyze" then Analyze else Slip)
            | "env" ->
                let* () = reject_extra "lengths" "sweep" in
                let* () = reject_extra "values" "sigma" in
                Ok Env
            | "scenarios" ->
                let* () = reject_extra "lengths" "sweep" in
                let* () = reject_extra "values" "sigma" in
                Ok Scenarios
            | "stats" ->
                let* () = reject_extra "lengths" "sweep" in
                let* () = reject_extra "values" "sigma" in
                Ok Stats
            | "sweep" -> (
                let* () = reject_extra "values" "sigma" in
                match find "lengths" with
                | None -> Ok (Sweep default_lengths)
                | Some v ->
                    let* ls = lift (int_list "lengths" v) in
                    if ls = [] then fail "field \"lengths\" must not be empty"
                    else Ok (Sweep ls))
            | "sigma" -> (
                let* () = reject_extra "lengths" "sweep" in
                match find "values" with
                | None -> Ok (Sigma default_sigmas)
                | Some v ->
                    let* vs = lift (float_list "values" v) in
                    if vs = [] then fail "field \"values\" must not be empty"
                    else Ok (Sigma vs))
            | other -> fail (Printf.sprintf "unknown request kind %S" other)
          in
          (* the environment spec composes a different chain — it only makes
             sense for the request kind built to analyze it *)
          let* () =
            match (kind, params.Params.env) with
            | Env, None -> fail "\"env\" requests require a params field \"env\""
            | Env, Some _ | _, None -> Ok ()
            | _, Some _ ->
                fail (Printf.sprintf "params field \"env\" is only valid for \"env\" requests")
          in
          Ok { id; kind; params; deadline_ms; hold_ms }
      | Some _ -> fail "field \"kind\" must be a string"
      | None -> fail "missing request field \"kind\"")

let parse_request line =
  match Cdr_obs.Jsonl.of_string line with
  | exception Failure msg -> Error (None, Printf.sprintf "malformed JSON: %s" msg)
  | Cdr_obs.Jsonl.Obj fields -> (
      (* pull the id out first so every later rejection can carry it *)
      match List.assoc_opt "id" fields with
      | Some (Cdr_obs.Jsonl.Str id) when id <> "" -> parse_with_id ~id fields
      | Some _ -> Error (None, "field \"id\" must be a non-empty string")
      | None -> Error (None, "missing request field \"id\""))
  | _ -> Error (None, "request must be a JSON object")

(* Re-encode a request for forwarding: the router parses a client line
   once (for routing and cache keys), rewrites the id to its internal
   correlation id, and sends this canonical form to the worker. [params]
   is the full {!Params.to_json} object, so defaults survive the hop
   unchanged and {!parse_request} round-trips the record exactly. *)
let request_json req =
  let num f = Cdr_obs.Jsonl.Num f in
  let kind_fields =
    match req.kind with
    | Sweep ls -> [ ("lengths", Cdr_obs.Jsonl.List (List.map (fun i -> num (float_of_int i)) ls)) ]
    | Sigma vs -> [ ("values", Cdr_obs.Jsonl.List (List.map num vs)) ]
    | Analyze | Slip | Env | Scenarios | Stats -> []
  in
  let opt name = function Some v -> [ (name, num v) ] | None -> [] in
  Cdr_obs.Jsonl.Obj
    ([ ("id", Cdr_obs.Jsonl.Str req.id); ("kind", Str (kind_name req.kind)) ]
    @ kind_fields @ opt "deadline_ms" req.deadline_ms @ opt "hold_ms" req.hold_ms
    @ [ ("params", Params.to_json req.params) ])

(* The result-memoization key: canonical (kind + kind payload + full params
   encoding). [None] marks a request whose response must not be replayed:
   [Stats] (a live snapshot) and anything carrying [hold_ms] (the
   fault-injection knob exists to burn wall time — memoizing it away would
   defeat the load tests that use it). [deadline_ms] is deliberately
   excluded: it shapes {e whether} a response is produced in time, never
   its content, and only ok responses are stored. *)
let cache_key req =
  match (req.kind, req.hold_ms) with
  | Stats, _ | _, Some _ -> None
  | kind, None ->
      let payload =
        match kind with
        | Sweep ls -> "[" ^ String.concat "," (List.map string_of_int ls) ^ "]"
        | Sigma vs -> "[" ^ String.concat "," (List.map (Printf.sprintf "%h") vs) ^ "]"
        (* the environment spec rides in the params encoding below *)
        | Analyze | Slip | Env | Scenarios | Stats -> ""
      in
      Some
        (kind_name kind ^ payload ^ "|"
        ^ Cdr_obs.Jsonl.to_string (Params.to_json req.params))

(* Both response constructors put "id" first, so stripping it and
   re-prepending a new one reproduces the original byte layout — the
   property the result cache's byte-identical-hit guarantee rests on. *)
let response_sans_id = function
  | Cdr_obs.Jsonl.Obj fields -> Cdr_obs.Jsonl.Obj (List.filter (fun (k, _) -> k <> "id") fields)
  | other -> other

let response_with_id json id =
  match response_sans_id json with
  | Cdr_obs.Jsonl.Obj fields -> Cdr_obs.Jsonl.Obj (("id", Str id) :: fields)
  | other -> other

let response_id json = Option.bind (Cdr_obs.Jsonl.member "id" json) Cdr_obs.Jsonl.to_str

let response_ok json = Cdr_obs.Jsonl.member "ok" json = Some (Cdr_obs.Jsonl.Bool true)

let ok_response ~id ~kind ~degraded ~cache_hits ~cache_misses ~elapsed_ms result =
  Cdr_obs.Jsonl.Obj
    [
      ("id", Str id);
      ("ok", Bool true);
      ("kind", Str (kind_name kind));
      ("degraded", Bool degraded);
      ( "cache",
        Obj
          [
            ("hits", Num (float_of_int cache_hits));
            ("misses", Num (float_of_int cache_misses));
          ] );
      ("elapsed_ms", Num elapsed_ms);
      ("result", result);
    ]

let error_response ?id ~code ~message () =
  let base =
    [
      ("ok", Cdr_obs.Jsonl.Bool false);
      ("error", Cdr_obs.Jsonl.Obj [ ("code", Str (code_string code)); ("message", Str message) ]);
    ]
  in
  match id with
  | Some id -> Cdr_obs.Jsonl.Obj (("id", Str id) :: base)
  | None -> Cdr_obs.Jsonl.Obj base

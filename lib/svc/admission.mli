(** Bounded admission queue between the reader thread(s) and the solve loop.

    The solve loop is deliberately single-consumer — solver setups own
    mutable workspaces, so solve parallelism lives {e inside} a request (the
    domain pool), not across requests. This queue is the only coupling
    point: producers ({!push}) are the protocol readers, the consumer
    ({!pop}/{!drain}) is the engine loop. When the queue is full a push is
    refused immediately rather than blocked — the caller turns that into a
    structured ["overloaded"] response so clients see backpressure instead
    of unbounded latency.

    The current depth is mirrored into the ["serve.queue_depth"] gauge on
    every mutation, carrying the queue's [labels] — a worker replica
    passes [("replica", i)] so per-replica depth is attributable when the
    stats of several replicas are aggregated. *)

type 'a t

val create : ?labels:(string * string) list -> bound:int -> unit -> 'a t
(** Raises [Invalid_argument] when [bound < 1]. [labels] (default none)
    tag the ["serve.queue_depth"] gauge. *)

val push : 'a t -> 'a -> [ `Ok | `Overloaded | `Closed ]
(** Non-blocking enqueue. [`Overloaded] when the queue already holds
    [bound] items; [`Closed] after {!close}. *)

val pop : 'a t -> 'a option
(** Blocking dequeue; [None] once the queue is closed {e and} empty
    (queued work is always drained before shutdown). *)

val drain : 'a t -> 'a list
(** Everything queued right now, oldest first, without blocking. Combined
    with a preceding {!pop} this gives the engine its batch: one blocking
    wait, then whatever else arrived in the meantime rides along. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked poppers. Idempotent. *)

val kick : 'a t -> unit
(** Wake blocked poppers without enqueueing (used by the shutdown ticker so
    a pending SIGTERM is noticed even while the consumer is parked). *)

val length : 'a t -> int

(* Command-line front end for the CDR stochastic analysis.

   Subcommands:
     analyze  - stationary distribution, BER, cycle slips for one config
     sweep    - BER vs counter length (Figure 5)
     sigma    - BER vs eye-opening jitter (Figure 4's axis)
     slip     - cycle-slip measures vs drift
     mc       - Monte-Carlo baseline and comparison with the analysis
     spy      - transition matrix structure (Figure 3)
     solvers  - iteration/time comparison of the stationary solvers *)

open Cmdliner
module Params = Cdr_svc.Params

(* ---------- shared configuration flags ----------

   The flags populate the same Cdr_svc.Params.t the serving protocol's
   "params" object decodes into, so the CLI and the server share one field
   set, one set of defaults and one Config conversion. Every flag is
   optional (absence detectable), so --scenario can seed a preset's values
   first and explicit flags override individual fields — the same
   precedence the protocol's "scenario" params field has. *)

let scenario_flag =
  let doc =
    "Seed the configuration from the named scenario preset (see the $(b,scenario) subcommand for \
     the list); explicit configuration flags override individual fields on top."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)

let grid =
  let doc = "Phase-error grid bins over [-1/2, 1/2) (even, multiple of n-phases)." in
  Arg.(value & opt (some int) None & info [ "grid" ] ~doc)

let n_phases =
  let doc = "Number of VCO clock phases (selector step G = 1/n-phases UI)." in
  Arg.(value & opt (some int) None & info [ "phases" ] ~doc)

let counter =
  let doc = "Up/down counter overflow length K." in
  Arg.(value & opt (some int) None & info [ "counter"; "k" ] ~doc)

let sigma_w =
  let doc = "Std of the white Gaussian eye-opening jitter n_w (UI)." in
  Arg.(value & opt (some float) None & info [ "sigma-w" ] ~doc)

let drift_mean =
  let doc = "Mean of the n_r drift jitter in grid bins per bit." in
  Arg.(value & opt (some float) None & info [ "drift-mean" ] ~doc)

let drift_max =
  let doc = "Support bound of the n_r drift jitter in grid bins." in
  Arg.(value & opt (some int) None & info [ "drift-max" ] ~doc)

let max_run =
  let doc = "Longest run of identical bits in the data (forced transition after)." in
  Arg.(value & opt (some int) None & info [ "max-run" ] ~doc)

let p01 =
  let doc = "Per-bit data transition probability 0 to 1." in
  Arg.(value & opt (some float) None & info [ "p01" ] ~doc)

let p10 =
  let doc = "Per-bit data transition probability 1 to 0." in
  Arg.(value & opt (some float) None & info [ "p10" ] ~doc)

let p_transition =
  let doc = "Deprecated alias: set both $(b,--p01) and $(b,--p10) to one value." in
  Arg.(value & opt (some float) None & info [ "p-transition" ] ~doc)

let params_term =
  let make scenario grid phases counter sigma_w drift_mean drift_max max_run p_transition p01 p10 =
    match
      match scenario with
      | None -> Ok Params.default
      | Some name -> (
          match Cdr.Scenario.find name with
          | Some s -> Ok (Params.of_scenario s)
          | None -> Error (Printf.sprintf "unknown scenario %S (try the scenario subcommand)" name))
    with
    | Error msg -> Error (`Msg msg)
    | Ok base ->
        let apply v f p = match v with Some x -> f p x | None -> p in
        (* the alias seeds both directions; explicit --p01/--p10 win *)
        Ok
          (base
          |> apply grid (fun p x -> { p with Params.grid = x })
          |> apply phases (fun p x -> { p with Params.phases = x })
          |> apply counter (fun p x -> { p with Params.counter = x })
          |> apply sigma_w (fun p x -> { p with Params.sigma_w = x })
          |> apply drift_mean (fun p x -> { p with Params.drift_mean = x })
          |> apply drift_max (fun p x -> { p with Params.drift_max = x })
          |> apply max_run (fun p x -> { p with Params.max_run = x })
          |> apply p_transition (fun p x -> { p with Params.p01 = x; p10 = x })
          |> apply p01 (fun p x -> { p with Params.p01 = x })
          |> apply p10 (fun p x -> { p with Params.p10 = x }))
  in
  Term.(
    term_result
      (const make $ scenario_flag $ grid $ n_phases $ counter $ sigma_w $ drift_mean $ drift_max
     $ max_run $ p_transition $ p01 $ p10))

let config_term =
  let to_cfg params =
    match Params.to_config params with
    | Ok cfg -> Ok cfg
    | Error msg -> Error (`Msg ("invalid configuration: " ^ msg))
  in
  Term.(term_result (const to_cfg $ params_term))

(* ---------- environment flags (analyze only) ---------- *)

let env_preset =
  let doc =
    "Analyze under a named Markov-modulated jitter environment preset (bursty, drift-cycle, \
     crosstalk): the regime chain is composed with the CDR chain and the report carries \
     regime-conditional statistics next to the regime-weighted BER."
  in
  Arg.(value & opt (some string) None & info [ "env" ] ~docv:"PRESET" ~doc)

let env_file =
  let doc =
    "Analyze under the Markov-modulated jitter environment described in $(docv) — the same JSON \
     object the serving protocol's version-2 \"env\" params field carries."
  in
  Arg.(value & opt (some string) None & info [ "env-file" ] ~docv:"FILE" ~doc)

let env_term =
  let make preset file =
    match (preset, file) with
    | Some _, Some _ -> Error (`Msg "--env and --env-file are mutually exclusive")
    | None, None -> Ok None
    | Some name, None -> (
        match Cdr_env.Env.find name with
        | Some e -> Ok (Some e)
        | None ->
            Error
              (`Msg
                (Printf.sprintf "unknown environment preset %S (presets: %s)" name
                   (String.concat ", " (List.map fst Cdr_env.Env.presets)))))
    | None, Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg -> Error (`Msg ("cannot read environment file: " ^ msg))
        | text -> (
            match Cdr_obs.Jsonl.of_string (String.trim text) with
            | exception Failure msg -> Error (`Msg (path ^ ": malformed JSON: " ^ msg))
            | json -> (
                match Cdr_env.Env.of_json json with
                | Ok e -> Ok (Some e)
                | Error msg -> Error (`Msg (path ^ ": " ^ msg)))))
  in
  Term.(term_result (const make $ env_preset $ env_file))

let solver =
  let solver_conv =
    Arg.enum [ ("multigrid", `Multigrid); ("power", `Power); ("gauss-seidel", `Gauss_seidel) ]
  in
  let doc = "Stationary solver: multigrid, power, or gauss-seidel." in
  Arg.(value & opt solver_conv `Multigrid & info [ "solver" ] ~doc)

let backend =
  let backend_conv = Arg.enum [ ("csr", `Csr); ("kron", `Kron) ] in
  let doc =
    "Operator backend: $(b,csr) (the materialized sparse chain, the default) or $(b,kron) (a \
     matrix-free sum of Kronecker terms over the full product state space — the transition \
     matrix is never formed, so state counts far past the CSR memory wall still solve). The \
     kron backend serves the $(b,multigrid) and $(b,power) solvers; BER and slip measures \
     agree with csr within the solver tolerance."
  in
  Arg.(value & opt backend_conv `Csr & info [ "backend" ] ~doc)

let smoother =
  let smoother_conv = Arg.enum [ ("lex", `Lex); ("colored", `Colored) ] in
  let doc =
    "Gauss-Seidel variant inside multigrid V-cycles: $(b,lex) (serial reference order, the \
     default) or $(b,colored) (multicolor smoother whose color classes run in parallel under \
     $(b,--jobs); results agree with lex within the solver tolerance and are bit-identical \
     across job counts)."
  in
  Arg.(value & opt smoother_conv `Lex & info [ "smoother" ] ~doc)

(* the CLI exposes the three practical solvers; widen to Model.solve's type *)
let widen_solver (s : [ `Multigrid | `Power | `Gauss_seidel ]) =
  (s
    :> [ `Multigrid | `Power | `Gauss_seidel | `Jacobi | `Sor of float | `Aggregation | `Arnoldi ])

(* ---------- parallelism (see Cdr_par) ---------- *)

let jobs =
  let doc =
    "Worker domains for parallel execution (sweep points, sparse solver kernels). Defaults to \
     $(b,CDR_JOBS) when set, else the machine's recommended domain count. Results are \
     bit-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* every subcommand gets a pool either way; jobs=1 pools spawn no domains and
   run the same (deterministic) slot grids serially *)
let with_jobs jobs f =
  match Cdr_par.Pool.with_pool ?jobs f with
  | v -> v
  | exception Invalid_argument msg ->
      Format.eprintf "cdr_analyze: %s@." msg;
      exit 2

(* ---------- sweep strategy flags (see Cdr.Sweep) ---------- *)

let warm_start =
  let doc =
    "Run the sweep as a warm-started continuation: points are processed in parameter order, each \
     reusing the previous point's state enumeration, sparsity pattern and stationary vector, with \
     multigrid setups cached per structure. Results agree with the default independent solves \
     within the solver tolerance."
  in
  Arg.(value & flag & info [ "warm-start" ] ~doc)

let no_cache =
  let doc =
    "With $(b,--warm-start): keep the previous-point initial iterate but disable model rebuilds \
     and the multigrid setup cache (every point rebuilds its own symbolic setup). Without \
     $(b,--warm-start) this is the default behavior already."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let strategy_of warm no_cache =
  if warm then { Cdr.Sweep.warm_start = true; reuse_setup = not no_cache } else Cdr.Sweep.cold

(* ---------- telemetry flags (see Cdr_obs) ---------- *)

let trace_file =
  let doc =
    "Write JSONL telemetry (one event per line: spans with wall-clock and allocation deltas, \
     per-iteration solver convergence samples) to $(docv). Equivalent to CDR_OBS=jsonl:$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_file =
  let doc =
    "Write the solver convergence trace as CSV (header iter,residual,elapsed_s; one row per \
     outer iteration, e.g. per multigrid V-cycle) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* ---------- analyze ---------- *)

(* analyze on the matrix-free backend: same report shape as the CSR path
   (the Report.t fields are computed from the Kronecker operator's solution),
   so the printed output, trace CSV and telemetry stay uniform *)
let run_analyze_kron ~pool ~solver cfg =
  let solver =
    match solver with
    | `Gauss_seidel ->
        Format.eprintf "cdr_analyze: solver gauss-seidel has no matrix-free path; use --backend csr@.";
        exit 2
    | `Multigrid -> `Multigrid
    | `Power -> `Power
  in
  let model = Cdr.Kron_model.build cfg in
  let trace = Cdr_obs.Trace.create ~name:(Cdr.Kron_model.solver_name solver) () in
  let ctx = Cdr.Context.make ~pool ~trace ~backend:`Kron () in
  let solution, solve_seconds =
    Cdr_obs.Span.timed ~name:"report.solve" (fun () -> Cdr.Kron_model.solve ~solver ~ctx model)
  in
  let pi = solution.Markov.Solution.pi in
  let rho = Cdr.Kron_model.phase_marginal model ~pi in
  let report =
    {
      Cdr.Report.config = cfg;
      ber = Cdr.Ber.of_marginal cfg ~rho;
      size = Cdr.Kron_model.n_states model;
      iterations = solution.Markov.Solution.iterations;
      matrix_form_seconds = model.Cdr.Kron_model.build_seconds;
      solve_seconds;
      phase_density = rho;
      eye_density = Cdr.Ber.eye_density cfg ~rho;
      trace;
    }
  in
  Format.printf "%a@." Cdr.Report.pp report;
  Format.printf "operator: %s@." (Cdr_op.label (Cdr.Kron_model.operator model));
  Format.printf "Mean time between cycle slips: %.3e bit intervals@."
    (Cdr.Kron_model.mean_time_between_slips model ~pi);
  report

(* analyze composed with a jitter environment: build env (x) CDR on the
   requested backend, solve, and print the regime-conditional report *)
let run_analyze_env ~pool ~solver ~smoother ~backend env cfg =
  let solver =
    match (backend, solver) with
    | `Kron, `Gauss_seidel ->
        Format.eprintf
          "cdr_analyze: solver gauss-seidel has no matrix-free path; use --backend csr@.";
        exit 2
    | _, s -> (s :> Cdr_env.Composed.solver)
  in
  let ctx = Cdr.Context.make ~pool ~smoother ~backend () in
  let _, report = Cdr_env.Report.run ~backend ~solver ~ctx env cfg in
  Format.printf "%a@." Cdr_env.Report.pp report

let analyze_term =
  let run cfg env solver backend smoother jobs trace_file metrics_file =
    with_jobs jobs @@ fun pool ->
    Option.iter
      (fun path ->
        try ignore (Cdr_obs.Sink.install_file path)
        with Sys_error msg ->
          Format.eprintf "cdr_analyze: cannot open trace file: %s@." msg;
          exit 1)
      trace_file;
    (* open the CSV before the solve so a bad path fails fast, not after a
       multi-second run *)
    let metrics_out =
      Option.map
        (fun path ->
          match open_out path with
          | exception Sys_error msg ->
              Format.eprintf "cdr_analyze: cannot open metrics file: %s@." msg;
              exit 1
          | oc -> (path, oc))
        metrics_file
    in
    match env with
    | Some e ->
        run_analyze_env ~pool ~solver ~smoother ~backend e cfg;
        Option.iter
          (fun (path, oc) ->
            close_out oc;
            Format.eprintf
              "cdr_analyze: --metrics has no convergence trace under --env; %s left empty@." path)
          metrics_out;
        Cdr_obs.Sink.close_all ()
    | None ->
        let report =
          match backend with
          | `Kron -> run_analyze_kron ~pool ~solver cfg
          | `Csr ->
              let report = Cdr.Report.run ~solver ~pool ~smoother cfg in
              Format.printf "%a@." Cdr.Report.pp report;
              let model = Cdr.Model.build ~pool cfg in
              let solution = Cdr.Model.solve ~solver:(widen_solver solver) ~pool ~smoother model in
              let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
              Format.printf "Mean time between cycle slips: %.3e bit intervals@." mtbf;
              report
        in
        Option.iter
          (fun (path, oc) ->
            output_string oc (Cdr_obs.Trace.to_csv report.Cdr.Report.trace);
            close_out oc;
            Format.eprintf "convergence trace (%d samples, %s) written to %s@."
              (Cdr_obs.Trace.length report.Cdr.Report.trace)
              (Cdr_obs.Trace.name report.Cdr.Report.trace)
              path)
          metrics_out;
        Cdr_obs.Sink.close_all ()
  in
  Term.(
    const run $ config_term $ env_term $ solver $ backend $ smoother $ jobs $ trace_file
    $ metrics_file)

let analyze_cmd =
  let doc = "Stationary phase-error density, BER and cycle-slip time for one configuration." in
  Cmd.v (Cmd.info "analyze" ~doc) analyze_term

(* ---------- sweep (counter) ---------- *)

let sweep_cmd =
  let lengths =
    let doc = "Counter lengths to evaluate." in
    Arg.(value & opt (list int) Cdr_svc.Protocol.default_lengths & info [ "lengths" ] ~doc)
  in
  let run cfg solver smoother jobs warm no_cache lengths =
    with_jobs jobs @@ fun pool ->
    let strategy = strategy_of warm no_cache in
    let points = Cdr.Sweep.counter_lengths ~solver ~smoother ~pool ~strategy cfg lengths in
    Format.printf "%a@." Cdr.Sweep.pp_points points;
    (* one point list feeds both the table and the optimum: no re-solving *)
    let k, ber = Cdr.Sweep.optimal_of_points points in
    Format.printf "optimal counter length: %d (BER %.3e)@." k ber
  in
  let doc = "BER vs counter length (the paper's Figure 5)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ config_term $ solver $ smoother $ jobs $ warm_start $ no_cache $ lengths)

(* ---------- sigma sweep ---------- *)

let sigma_cmd =
  let sigmas =
    let doc = "Eye-opening jitter levels to evaluate." in
    Arg.(value & opt (list float) Cdr_svc.Protocol.default_sigmas & info [ "values" ] ~doc)
  in
  let run cfg solver smoother jobs warm no_cache sigmas =
    with_jobs jobs @@ fun pool ->
    let strategy = strategy_of warm no_cache in
    let points = Cdr.Sweep.sigma_w_values ~solver ~smoother ~pool ~strategy cfg sigmas in
    Format.printf "%a@." Cdr.Sweep.pp_points points
  in
  let doc = "BER vs eye-opening jitter level (the axis of the paper's Figure 4)." in
  Cmd.v (Cmd.info "sigma" ~doc)
    Term.(const run $ config_term $ solver $ smoother $ jobs $ warm_start $ no_cache $ sigmas)

(* ---------- slip ---------- *)

let slip_cmd =
  let run cfg solver =
    let model = Cdr.Model.build cfg in
    let solution = Cdr.Model.solve ~solver:(widen_solver solver) model in
    let rate = Cdr.Cycle_slip.rate model ~pi:solution.Markov.Solution.pi in
    let mtbf = Cdr.Cycle_slip.mean_time_between model ~pi:solution.Markov.Solution.pi in
    let first = Cdr.Cycle_slip.mean_first_slip_time model in
    Format.printf "slip rate          : %.4e per bit@." rate;
    Format.printf "mean time between  : %.4e bits@." mtbf;
    Format.printf "mean first slip    : %.4e bits (from lock)@." first
  in
  let doc = "Cycle-slip rate and mean times (first-passage analysis)." in
  Cmd.v (Cmd.info "slip" ~doc) Term.(const run $ config_term $ solver)

(* ---------- mc ---------- *)

let mc_cmd =
  let bits =
    let doc = "Bit intervals to simulate." in
    Arg.(value & opt int 1_000_000 & info [ "bits" ] ~doc)
  in
  let seed =
    let doc = "PRNG seed." in
    Arg.(value & opt int64 42L & info [ "seed" ] ~doc)
  in
  let run cfg solver bits seed =
    let model = Cdr.Model.build cfg in
    let result, _solution = Cdr.Ber.analyze ~solver model in
    Format.printf "analysis BER      : %.4e@." result.Cdr.Ber.ber;
    let o = Sim.Transient.run ~seed cfg ~bits in
    let p = Sim.Estimate.point_estimate ~errors:o.Sim.Transient.errors ~bits in
    let iv = Sim.Estimate.wilson ~errors:o.Sim.Transient.errors ~bits () in
    Format.printf "simulated BER     : %.4e (%d errors in %d bits)@." p o.Sim.Transient.errors bits;
    Format.printf "95%% interval      : [%.4e, %.4e]@." iv.Sim.Estimate.lower iv.Sim.Estimate.upper;
    Format.printf "slips observed    : %d@." o.Sim.Transient.slips;
    let needed = Sim.Estimate.required_bits ~ber:(Float.max result.Cdr.Ber.ber 1e-300) () in
    Format.printf "bits needed for a 10%%-accurate MC estimate of the analysis BER: %.2e@." needed;
    if needed > float_of_int bits then
      Format.printf "(%.1e times more than simulated here -- the paper's infeasibility argument)@."
        (needed /. float_of_int bits)
  in
  let doc = "Monte-Carlo baseline vs the Markov-chain analysis." in
  Cmd.v (Cmd.info "mc" ~doc) Term.(const run $ config_term $ solver $ bits $ seed)

(* ---------- spy ---------- *)

let spy_cmd =
  let run cfg =
    let model = Cdr.Model.build cfg in
    Format.printf "%a@." Sparse.Spy.pp (Markov.Chain.tpm model.Cdr.Model.chain);
    Format.printf "@.";
    let net, _ = Cdr.Model.network cfg in
    Format.printf "%a@." Fsm.Network.pp_summary net
  in
  let doc = "Nonzero pattern of the transition probability matrix (the paper's Figure 3)." in
  Cmd.v (Cmd.info "spy" ~doc) Term.(const run $ config_term)

(* ---------- tolerance ---------- *)

let tolerance_cmd =
  let target =
    let doc = "BER target for the tolerance mask." in
    Arg.(value & opt float 1e-12 & info [ "ber-target" ] ~doc)
  in
  let family =
    let family_conv =
      Arg.enum [ ("sinusoidal", Cdr.Tolerance.Sinusoidal); ("wander", Cdr.Tolerance.Wander 0.5) ]
    in
    let doc = "Jitter family: sinusoidal or wander (rms = max/2)." in
    Arg.(value & opt family_conv Cdr.Tolerance.Sinusoidal & info [ "family" ] ~doc)
  in
  let run cfg target family =
    let result = Cdr.Tolerance.analyze ~family ~ber_target:target cfg in
    Format.printf "%a@." Cdr.Tolerance.pp result
  in
  let doc = "Jitter tolerance: largest input jitter meeting a BER target (bisection)." in
  Cmd.v (Cmd.info "tolerance" ~doc) Term.(const run $ config_term $ target $ family)

(* ---------- acquisition & clock jitter ---------- *)

let acquisition_cmd =
  let band =
    let doc = "Lock band in UI (default: one selector step G)." in
    Arg.(value & opt (some float) None & info [ "band" ] ~doc)
  in
  let run cfg band =
    let model = Cdr.Model.build cfg in
    let acq = Cdr.Acquisition.analyze ?lock_band_ui:band model in
    Format.printf "%a@.@." Cdr.Acquisition.pp acq;
    let solution = Cdr.Model.solve model in
    let jitter = Cdr.Clock_jitter.analyze model ~pi:solution.Markov.Solution.pi in
    Format.printf "%a@." Cdr.Clock_jitter.pp jitter
  in
  let doc = "Lock-acquisition times and recovered-clock jitter statistics." in
  Cmd.v (Cmd.info "acquisition" ~doc) Term.(const run $ config_term $ band)

(* ---------- scenario ---------- *)

let scenario_cmd =
  let scenario_name =
    let doc = "Scenario name (omit to list all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let run name =
    match name with
    | None ->
        List.iter
          (fun s -> Format.printf "%-28s %s@." s.Cdr.Scenario.name s.Cdr.Scenario.description)
          Cdr.Scenario.all
    | Some name -> (
        match Cdr.Scenario.find name with
        | None ->
            Format.eprintf "unknown scenario %s@." name;
            exit 1
        | Some s ->
            Format.printf "%a@.@." Cdr.Scenario.pp s;
            let passes, ber = Cdr.Scenario.meets_specification s in
            Format.printf "analysis BER: %.3e -> %s the %.0e specification@." ber
              (if passes then "MEETS" else "FAILS")
              s.Cdr.Scenario.ber_specification)
  in
  let doc = "Evaluate a named operating scenario against its BER specification." in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run $ scenario_name)

(* ---------- dot ---------- *)

let dot_cmd =
  let run cfg =
    let net, _ = Cdr.Model.network cfg in
    print_string (Fsm.Network.to_dot net)
  in
  let doc = "Emit the FSM network as a Graphviz digraph (Figure 2)." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ config_term)

(* ---------- spectrum ---------- *)

let spectrum_cmd =
  let lags =
    let doc = "Autocovariance lags to compute before the transform." in
    Arg.(value & opt int 256 & info [ "lags" ] ~doc)
  in
  let run cfg lags =
    let model = Cdr.Model.build cfg in
    let solution = Cdr.Model.solve model in
    let psd = Cdr.Clock_jitter.spectrum ~lags model ~pi:solution.Markov.Solution.pi in
    Format.printf "frequency(cycles/bit),psd@.";
    Array.iter (fun (f, p) -> Format.printf "%.6f,%.6e@." f p) psd
  in
  let doc = "Recovered-clock jitter power spectral density (CSV on stdout)." in
  Cmd.v (Cmd.info "spectrum" ~doc) Term.(const run $ config_term $ lags)

(* ---------- csv ---------- *)

let csv_cmd =
  let run cfg =
    let report = Cdr.Report.run cfg in
    print_string (Cdr.Report.to_csv report)
  in
  let doc = "Stationary density series as CSV on stdout (for plotting)." in
  Cmd.v (Cmd.info "csv" ~doc) Term.(const run $ config_term)

(* ---------- solvers ---------- *)

let solvers_cmd =
  let run cfg =
    let model = Cdr.Model.build cfg in
    Format.printf "chain: %d states@.@." model.Cdr.Model.n_states;
    let cases =
      [ ("multigrid", `Multigrid); ("gauss-seidel", `Gauss_seidel); ("jacobi", `Jacobi);
        ("power", `Power); ("aggregation", `Aggregation); ("arnoldi", `Arnoldi) ]
    in
    List.iter
      (fun (name, s) ->
        let t0 = Unix.gettimeofday () in
        let sol = Cdr.Model.solve ~solver:s ~tol:1e-10 model in
        Format.printf "%-14s %6d iterations  residual %.2e  %6.2fs %s@." name
          sol.Markov.Solution.iterations sol.Markov.Solution.residual
          (Unix.gettimeofday () -. t0)
          (if sol.Markov.Solution.converged then "" else "(NOT converged)"))
      cases
  in
  let doc = "Compare the stationary solvers on the composed chain." in
  Cmd.v (Cmd.info "solvers" ~doc) Term.(const run $ config_term)

let () =
  Cdr_obs.Sink.init_from_env ();
  let doc = "Stochastic performance analysis of digital clock-data recovery circuits" in
  let info = Cmd.info "cdr_analyze" ~version:"1.0.0" ~doc in
  (* [analyze] doubles as the default command, so the telemetry flags work
     with no subcommand: cdr_analyze --trace t.jsonl --metrics m.csv *)
  let status =
    Cmd.eval
      (Cmd.group ~default:analyze_term info
         [ analyze_cmd; sweep_cmd; sigma_cmd; slip_cmd; mc_cmd; spy_cmd; tolerance_cmd;
           acquisition_cmd; scenario_cmd; dot_cmd; spectrum_cmd; csv_cmd; solvers_cmd ])
  in
  Cdr_obs.Sink.close_all ();
  exit status

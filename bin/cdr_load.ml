(* Open-loop, deadline-aware load generator for cdr_serve.

   Replays a mixed analyze/sweep/sigma/slip session at a fixed target rate:
   each request has a scheduled send instant (t0 + i/rate) that does not
   depend on earlier responses, so a slow server cannot make the generator
   politely back off and hide the queueing it causes (no coordinated
   omission). Latency is measured from the scheduled instant to the
   response, on the monotonic clock.

   A --warmup phase (excluded from the percentiles and throughput) runs
   before the measured session and is waited out completely, so the measured
   phase starts against hot solver caches — and, with --result-cache, a
   populated memoization cache. --duration switches the measured phase from
   a fixed request count to a fixed time budget at the target rate.

   The server is either spawned as a child over stdio pipes (default; the
   binary is looked up next to cdr_load itself) or an already-running one is
   reached over its Unix-domain socket (--socket). After the session one
   "stats" request closes the loop: the server's own view of the run lands
   in the report next to the client-side percentiles — including one row per
   worker replica when the server is a --replicas router.

   --replica-bench N runs the whole throughput experiment instead: a
   saturating session against 1 replica, the same against N, and a
   repeated-query session against a result cache, recording
   serve.replica_speedup / serve.result_cache_* gauges into BENCH.json. *)

open Cmdliner

let rate =
  let doc = "Target request rate in requests/second (open loop)." in
  Arg.(value & opt float 20.0 & info [ "rate" ] ~docv:"RPS" ~doc)

let requests =
  let doc = "Total number of measured requests to send (ignored with $(b,--duration))." in
  Arg.(value & opt int 100 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let warmup =
  let doc =
    "Send $(docv) warmup requests (same deterministic mix) before the measured session and \
     wait for all their responses first. Warmup latencies are excluded from the percentiles \
     and throughput; they are reported separately as the cold profile."
  in
  Arg.(value & opt int 0 & info [ "warmup" ] ~docv:"N" ~doc)

let duration =
  let doc =
    "Run the measured phase for $(docv) seconds at the target rate instead of sending a fixed \
     request count ($(b,-n) is ignored)."
  in
  Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"S" ~doc)

let socket =
  let doc =
    "Connect to a running cdr_serve on this Unix-domain socket instead of spawning one."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_bin =
  let doc = "cdr_serve binary to spawn (ignored with --socket). Default: next to cdr_load." in
  Arg.(value & opt (some string) None & info [ "serve-bin" ] ~docv:"PATH" ~doc)

let jobs =
  let doc = "Worker domains for the spawned server's solver kernels." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let replicas =
  let doc = "Spawn the server with $(docv) worker replicas (ignored with --socket)." in
  Arg.(value & opt (some int) None & info [ "replicas" ] ~docv:"N" ~doc)

let result_cache =
  let doc = "Spawn the server with a result cache of $(docv) entries (ignored with --socket)." in
  Arg.(value & opt (some int) None & info [ "result-cache" ] ~docv:"CAP" ~doc)

let replica_bench =
  let doc =
    "Run the replica throughput experiment: a saturating session against 1 replica, the same \
     against $(docv) replicas, and a repeated-query session against a shared result cache. \
     Records $(b,serve.replica_speedup) (with a core-count-aware ok gauge) and \
     $(b,serve.result_cache_hit_rate)/$(b,_p95_ratio) into the BENCH.json report. Most other \
     flags are ignored; the sessions pick their own saturating rates."
  in
  Arg.(value & opt (some int) None & info [ "replica-bench" ] ~docv:"N" ~doc)

let deadline_ms =
  let doc = "Per-request deadline_ms field; expired requests come back as timeout errors." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let grid =
  let doc = "Phase-error grid bins per request (problem size knob)." in
  Arg.(value & opt int 32 & info [ "grid" ] ~docv:"BINS" ~doc)

let structures =
  let doc =
    "Rotate the counter length through this many values (2, 3, ...): distinct counters give \
     distinct sparsity structures, exercising the server's setup cache, batcher and replica \
     routing."
  in
  Arg.(value & opt int 2 & info [ "structures" ] ~docv:"K" ~doc)

let json_path =
  let doc =
    "Merge the machine-readable report into this BENCH file (default: $(b,CDR_BENCH_JSON) or \
     BENCH.json). Other tools' sections in an existing file are preserved."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

(* ---------- session construction ---------- *)

let mono () = Cdr_obs.Clock.monotonic ()

(* the canned mix: analyze-heavy, every solve kind present, deterministic *)
let kind_of_index i =
  match i mod 5 with 0 | 1 -> `Analyze | 2 -> `Sweep | 3 -> `Sigma | _ -> `Slip

let kind_name = function
  | `Analyze -> "analyze"
  | `Sweep -> "sweep"
  | `Sigma -> "sigma"
  | `Slip -> "slip"
  | `Stats -> "stats"

(* the mix repeats with this period: 5 kinds x [structures] counters; a
   warmup of one full period therefore touches every distinct request *)
let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let mix_period structures =
  let s = max 1 structures in
  5 * s / gcd 5 s

let request_line ~grid ~structures ~deadline_ms ~id i =
  let kind = kind_of_index i in
  let counter = 2 + (i mod max 1 structures) in
  let base =
    [ ("id", Cdr_obs.Jsonl.Str id); ("kind", Cdr_obs.Jsonl.Str (kind_name kind)) ]
  in
  let extras =
    match kind with
    | `Sweep -> [ ("lengths", Cdr_obs.Jsonl.List [ Num 2.; Num 4. ]) ]
    | `Sigma -> [ ("values", Cdr_obs.Jsonl.List [ Num 0.05; Num 0.06 ]) ]
    | _ -> []
  in
  let deadline =
    match deadline_ms with Some ms -> [ ("deadline_ms", Cdr_obs.Jsonl.Num ms) ] | None -> []
  in
  let params =
    Cdr_obs.Jsonl.Obj
      [
        ("version", Num 2.);
        ("grid", Num (float_of_int grid));
        ("loop", Obj [ ("phases", Num 16.); ("counter", Num (float_of_int counter)) ]);
      ]
  in
  ( kind_name kind,
    Cdr_obs.Jsonl.to_string
      (Cdr_obs.Jsonl.Obj (base @ extras @ deadline @ [ ("params", params) ])) )

(* ---------- transports ---------- *)

let default_serve_bin () =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "cdr_serve.exe" in
  if Sys.file_exists beside then beside
  else Filename.concat (Filename.dirname Sys.executable_name) "cdr_serve"

let open_channels ~socket ~serve_bin ~spawn_args =
  match socket with
  | Some path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, None)
  | None ->
      let bin = match serve_bin with Some b -> b | None -> default_serve_bin () in
      let args = Array.of_list (bin :: spawn_args) in
      let ic, oc = Unix.open_process_args bin args in
      (ic, oc, Some (ic, oc))

(* ---------- response accounting ---------- *)

type outcome = { o_kind : string; o_code : string; o_latency : float }

type session = {
  s_requests : int;  (* measured requests sent *)
  s_warmup : int;
  s_lost : int;  (* warmup+measured requests never answered: must be 0 *)
  s_wall : float;
  s_throughput : float;
  s_outcomes : outcome list;  (* measured phase only *)
  s_warm_outcomes : outcome list;
  s_errors : (string * int) list;  (* measured phase, by error code *)
  s_server_stats : Cdr_obs.Jsonl.t;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let p95 outcomes =
  let sorted = Array.of_list (List.map (fun o -> o.o_latency) outcomes) in
  Array.sort compare sorted;
  percentile sorted 0.95

let run_session ~rate ~requests ~warmup ~duration ~socket ~serve_bin ~spawn_args ~deadline_ms
    ~grid ~structures () =
  let requests =
    match duration with
    | Some s -> max 1 (int_of_float (Float.ceil (rate *. s)))
    | None -> requests
  in
  let ic, oc, child = open_channels ~socket ~serve_bin ~spawn_args in
  (* id -> (kind, scheduled send instant, warm?); latency is measured from
     the schedule, not the (possibly late) actual write *)
  let table : (string, string * float * bool) Hashtbl.t = Hashtbl.create (2 * requests) in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let outcomes = ref [] and warm_outcomes = ref [] in
  let warm_seen = ref 0 and seen = ref 0 and receiver_done = ref false in
  let server_stats = ref Cdr_obs.Jsonl.Null in
  let expected = warmup + requests + 1 (* the trailing stats request *) in
  let receiver =
    Thread.create
      (fun () ->
        (try
           while !warm_seen + !seen < expected do
             let line = input_line ic in
             let now = mono () in
             match Cdr_obs.Jsonl.of_string line with
             | exception Failure _ -> ()
             | json ->
                 let id =
                   Option.bind (Cdr_obs.Jsonl.member "id" json) Cdr_obs.Jsonl.to_str
                 in
                 let code =
                   match Cdr_obs.Jsonl.member "ok" json with
                   | Some (Cdr_obs.Jsonl.Bool true) -> "ok"
                   | _ -> (
                       match
                         Option.bind
                           (Option.bind (Cdr_obs.Jsonl.member "error" json)
                              (Cdr_obs.Jsonl.member "code"))
                           Cdr_obs.Jsonl.to_str
                       with
                       | Some c -> c
                       | None -> "unparseable")
                 in
                 Option.iter
                   (fun id ->
                     Mutex.lock mu;
                     (match Hashtbl.find_opt table id with
                     | Some ("stats", _, _) ->
                         incr seen;
                         server_stats :=
                           Option.value ~default:Cdr_obs.Jsonl.Null
                             (Cdr_obs.Jsonl.member "result" json)
                     | Some (kind, scheduled, warm) ->
                         let o =
                           { o_kind = kind; o_code = code; o_latency = now -. scheduled }
                         in
                         if warm then begin
                           incr warm_seen;
                           warm_outcomes := o :: !warm_outcomes
                         end
                         else begin
                           incr seen;
                           outcomes := o :: !outcomes
                         end
                     | None -> ());
                     Hashtbl.remove table id;
                     Condition.broadcast cond;
                     Mutex.unlock mu)
                   id
           done
         with End_of_file -> ());
        Mutex.lock mu;
        receiver_done := true;
        Condition.broadcast cond;
        Mutex.unlock mu)
      ()
  in
  let send ~warm i =
    let id = Printf.sprintf "%s%05d" (if warm then "w" else "l") i in
    let kind, line = request_line ~grid ~structures ~deadline_ms ~id i in
    (id, kind, line)
  in
  (* warmup phase: paced like the real session, then fully waited out so the
     measured phase starts against warm caches instead of racing them *)
  if warmup > 0 then begin
    let t0w = mono () in
    for i = 0 to warmup - 1 do
      let id, kind, line = send ~warm:true i in
      let scheduled = t0w +. (float_of_int i /. rate) in
      let now = mono () in
      if scheduled > now then Unix.sleepf (scheduled -. now);
      Mutex.lock mu;
      Hashtbl.replace table id (kind, scheduled, true);
      Mutex.unlock mu;
      output_string oc line;
      output_char oc '\n';
      flush oc
    done;
    Mutex.lock mu;
    while !warm_seen < warmup && not !receiver_done do
      Condition.wait cond mu
    done;
    Mutex.unlock mu
  end;
  let t0 = mono () in
  for i = 0 to requests - 1 do
    let id, kind, line = send ~warm:false i in
    let scheduled = t0 +. (float_of_int i /. rate) in
    let now = mono () in
    if scheduled > now then Unix.sleepf (scheduled -. now);
    Mutex.lock mu;
    Hashtbl.replace table id (kind, scheduled, false);
    Mutex.unlock mu;
    output_string oc line;
    output_char oc '\n';
    flush oc
  done;
  (* close the loop: the server reports its own view of the session *)
  Mutex.lock mu;
  Hashtbl.replace table "finalstats" ("stats", mono (), false);
  Mutex.unlock mu;
  output_string oc "{\"id\":\"finalstats\",\"kind\":\"stats\"}\n";
  flush oc;
  (* EOF drains the stdio server; a socket server just sees the connection
     close after the last response *)
  (match child with
  | Some _ -> close_out oc
  | None -> (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND with _ -> ()));
  Thread.join receiver;
  let wall = mono () -. t0 in
  (match child with Some (ic, oc) -> ignore (Unix.close_process (ic, oc)) | None -> ());
  let outcomes = !outcomes in
  (* [seen] counts the stats response too; measured solve responses: *)
  let responses = List.length outcomes in
  let errors : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      if o.o_code <> "ok" then
        match Hashtbl.find_opt errors o.o_code with
        | Some r -> incr r
        | None -> Hashtbl.add errors o.o_code (ref 1))
    outcomes;
  {
    s_requests = requests;
    s_warmup = warmup;
    s_lost = warmup + requests - !warm_seen - responses;
    s_wall = wall;
    s_throughput = (if wall > 0.0 then float_of_int responses /. wall else 0.0);
    s_outcomes = outcomes;
    s_warm_outcomes = !warm_outcomes;
    s_errors =
      Hashtbl.fold (fun code r acc -> (code, !r) :: acc) errors [] |> List.sort compare;
    s_server_stats = !server_stats;
  }

(* ---------- report assembly ---------- *)

let kind_rows outcomes =
  let by_kind : (string, float list ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let lats, oks =
        match Hashtbl.find_opt by_kind o.o_kind with
        | Some cell -> cell
        | None ->
            let cell = (ref [], ref 0) in
            Hashtbl.add by_kind o.o_kind cell;
            cell
      in
      lats := o.o_latency :: !lats;
      if o.o_code = "ok" then incr oks)
    outcomes;
  Hashtbl.fold
    (fun kind (lats, oks) acc ->
      let sorted = Array.of_list !lats in
      Array.sort compare sorted;
      ( kind,
        Cdr_obs.Jsonl.Obj
          [
            ("count", Num (float_of_int (Array.length sorted)));
            ("ok", Num (float_of_int !oks));
            ("p50_s", Num (percentile sorted 0.50));
            ("p95_s", Num (percentile sorted 0.95));
            ("p99_s", Num (percentile sorted 0.99));
            ("max_s", Num (percentile sorted 1.0));
          ] )
      :: acc)
    by_kind []
  |> List.sort compare

(* one row per worker replica, pulled out of a --replicas server's stats
   aggregate: request count (all kinds and statuses) attributed to each *)
let replica_rows stats =
  match Cdr_obs.Jsonl.member "replicas" stats with
  | Some (Cdr_obs.Jsonl.List rows) ->
      List.filter_map
        (fun row ->
          let f name = Option.bind (Cdr_obs.Jsonl.member name row) Cdr_obs.Jsonl.to_float in
          match f "replica" with
          | None -> None
          | Some r ->
              let count =
                match Cdr_obs.Jsonl.member "requests" row with
                | Some (Cdr_obs.Jsonl.List reqs) ->
                    List.fold_left
                      (fun acc req ->
                        acc
                        +. Option.value ~default:0.0
                             (Option.bind (Cdr_obs.Jsonl.member "count" req)
                                Cdr_obs.Jsonl.to_float))
                      0.0 reqs
                | _ -> 0.0
              in
              Some
                (Cdr_obs.Jsonl.Obj
                   [
                     ("replica", Num r);
                     ("pid", Num (Option.value ~default:Float.nan (f "pid")));
                     ("requests", Num count);
                   ]))
        rows
  | _ -> []

let session_report ~rate s =
  Cdr_obs.Jsonl.Obj
    ([
       ("tool", Cdr_obs.Jsonl.Str "cdr_load");
       ("rate_target_rps", Num rate);
       ("requests_sent", Num (float_of_int s.s_requests));
       ("warmup", Num (float_of_int s.s_warmup));
       ("responses", Num (float_of_int (List.length s.s_outcomes)));
       ("wall_s", Num s.s_wall);
       ("throughput_rps", Num s.s_throughput);
       ("kinds", Obj (kind_rows s.s_outcomes));
       ( "errors",
         Obj (List.map (fun (c, n) -> (c, Cdr_obs.Jsonl.Num (float_of_int n))) s.s_errors) );
     ]
    @ (match s.s_warm_outcomes with
      | [] -> []
      | warm -> [ ("warmup_p95_s", Cdr_obs.Jsonl.Num (p95 warm)) ])
    @ (match replica_rows s.s_server_stats with
      | [] -> []
      | rows -> [ ("replicas", Cdr_obs.Jsonl.List rows) ])
    @ [ ("server_stats", s.s_server_stats) ])

let print_session ~rate s =
  Format.printf "cdr_load: %d requests at %.1f rps target -> %d responses in %.2fs (%.1f rps)@."
    s.s_requests rate
    (List.length s.s_outcomes)
    s.s_wall s.s_throughput;
  if s.s_warmup > 0 then
    Format.printf "  warmup: %d requests (excluded), cold p95=%.4fs@." s.s_warmup
      (p95 s.s_warm_outcomes);
  List.iter
    (fun (kind, row) ->
      let f name = Option.bind (Cdr_obs.Jsonl.member name row) Cdr_obs.Jsonl.to_float in
      let v name = Option.value ~default:Float.nan (f name) in
      Format.printf "  %-8s n=%-4.0f ok=%-4.0f p50=%.4fs p95=%.4fs p99=%.4fs@." kind
        (v "count") (v "ok") (v "p50_s") (v "p95_s") (v "p99_s"))
    (kind_rows s.s_outcomes);
  List.iter
    (fun row ->
      let f name = Option.bind (Cdr_obs.Jsonl.member name row) Cdr_obs.Jsonl.to_float in
      let v name = Option.value ~default:Float.nan (f name) in
      Format.printf "  replica %.0f: %.0f requests (pid %.0f)@." (v "replica") (v "requests")
        (v "pid"))
    (replica_rows s.s_server_stats);
  if s.s_errors <> [] then
    Format.printf "  errors: %s@."
      (String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) s.s_errors))

(* ---------- BENCH.json merging ---------- *)

(* the report file is shared with bench/main.ml: one top-level object with a
   "sections" map. Merge this tool's section in; never clobber the others. *)
let merge_section path name section =
  let previous =
    if Sys.file_exists path then
      try
        let ic = open_in path in
        let contents = In_channel.input_all ic in
        close_in ic;
        Some (Cdr_obs.Jsonl.of_string (String.trim contents))
      with Failure _ | Sys_error _ -> None
    else None
  in
  let total, sections =
    match previous with
    | Some (Cdr_obs.Jsonl.Obj fields) ->
        let total =
          Option.value ~default:(Cdr_obs.Jsonl.Num 0.0) (List.assoc_opt "total_seconds" fields)
        in
        let sections =
          match List.assoc_opt "sections" fields with
          | Some (Cdr_obs.Jsonl.Obj secs) -> secs
          | _ -> []
        in
        (total, sections)
    | _ -> (Cdr_obs.Jsonl.Num 0.0, [])
  in
  let sections = List.filter (fun (k, _) -> k <> name) sections @ [ (name, section) ] in
  let out = open_out path in
  output_string out
    (Cdr_obs.Jsonl.to_string
       (Cdr_obs.Jsonl.Obj [ ("total_seconds", total); ("sections", Obj sections) ]));
  output_char out '\n';
  close_out out

let bench_path json_path =
  match json_path with
  | Some p -> p
  | None -> (
      match Sys.getenv_opt "CDR_BENCH_JSON" with Some p -> p | None -> "BENCH.json")

(* ---------- the replica throughput experiment ---------- *)

let replica_bench_run ~n ~serve_bin ~grid ~json_path =
  let structures = 3 in
  let warm = mix_period structures in
  let requests = 40 in
  (* saturating offered rate: far beyond single-replica capacity, so
     throughput measures the servers' drain rate, not the generator's *)
  let rate = 200.0 in
  let spawn extra = [ "--queue-bound"; string_of_int (requests + warm + 8) ] @ extra in
  let leg name extra ~structures ~warmup ~requests =
    Format.printf "-- leg %s: cdr_serve %s@." name (String.concat " " (spawn extra));
    let s =
      run_session ~rate ~requests ~warmup ~duration:None ~socket:None ~serve_bin
        ~spawn_args:(spawn extra) ~deadline_ms:None ~grid ~structures ()
    in
    print_session ~rate s;
    s
  in
  let s1 = leg "replicas-1" [] ~structures ~warmup:warm ~requests in
  let sn = leg "replicas-n" [ "--replicas"; string_of_int n ] ~structures ~warmup:warm ~requests in
  let sc =
    leg "cached"
      [ "--replicas"; "2"; "--result-cache"; "256" ]
      ~structures:1 ~warmup:(mix_period 1) ~requests:50
  in
  let err_rate s =
    float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 s.s_errors)
    /. float_of_int (max 1 s.s_requests)
  in
  let speedup = if s1.s_throughput > 0.0 then sn.s_throughput /. s1.s_throughput else 0.0 in
  (* a single-core host cannot show a multiplier from process-level
     parallelism — same policy as the solver-level mg.speedup gates: the
     multi-core thresholds only apply where the cores exist *)
  let cores = Domain.recommended_domain_count () in
  let required = if cores >= 4 then 2.0 else if cores >= 2 then 1.2 else 0.85 in
  let equal_errors = Float.abs (err_rate s1 -. err_rate sn) <= 0.01 in
  let speedup_ok = speedup >= required && equal_errors in
  (* the cached leg: warmup solved every distinct request once, so the
     measured phase should be (nearly) all memoization hits *)
  let rc_member name =
    let stats = sc.s_server_stats in
    let rc =
      match Cdr_obs.Jsonl.member "router" stats with
      | Some router -> Cdr_obs.Jsonl.member "result_cache" router
      | None -> Cdr_obs.Jsonl.member "result_cache" stats
    in
    Option.value ~default:0.0
      (Option.bind (Option.bind rc (Cdr_obs.Jsonl.member name)) Cdr_obs.Jsonl.to_float)
  in
  let hits = rc_member "hits" and misses = rc_member "misses" in
  let hit_rate = if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0 in
  let cold_p95 = p95 sc.s_warm_outcomes and hit_p95 = p95 sc.s_outcomes in
  let p95_ratio =
    if hit_p95 > 0.0 && Float.is_finite cold_p95 then cold_p95 /. hit_p95 else 0.0
  in
  let cache_ok = hit_rate > 0.5 && p95_ratio >= 10.0 in
  let bool_gauge b = Cdr_obs.Jsonl.Num (if b then 1.0 else 0.0) in
  let section =
    Cdr_obs.Jsonl.Obj
      [
        ("replicas", Num (float_of_int n));
        ("cores", Num (float_of_int cores));
        ("r1", session_report ~rate s1);
        ("rn", session_report ~rate sn);
        ("cached", session_report ~rate sc);
        ( "gauges",
          Obj
            [
              ("serve.replica_speedup", Num speedup);
              ("serve.replica_speedup_required", Num required);
              ("serve.replica_speedup_ok", bool_gauge speedup_ok);
              ("serve.result_cache_hit_rate", Num hit_rate);
              ("serve.result_cache_p95_ratio", Num p95_ratio);
              ("serve.result_cache_ok", bool_gauge cache_ok);
            ] );
      ]
  in
  let path = bench_path json_path in
  merge_section path "serve.replica_bench" section;
  Format.printf
    "replica-bench: %.1f rps (1 replica) -> %.1f rps (%d replicas): speedup %.2fx (required \
     %.2fx on %d cores) %s@."
    s1.s_throughput sn.s_throughput n speedup required cores
    (if speedup_ok then "OK" else "FAIL");
  Format.printf
    "result-cache: hit rate %.0f%%, cold p95 %.4fs vs hit p95 %.4fs (%.0fx) %s@."
    (100.0 *. hit_rate) cold_p95 hit_p95 p95_ratio
    (if cache_ok then "OK" else "FAIL");
  Format.printf "report merged into %s@." path;
  let lost = s1.s_lost + sn.s_lost + sc.s_lost in
  if lost > 0 then begin
    Format.eprintf "cdr_load: %d requests were never answered@." lost;
    exit 1
  end;
  if not (speedup_ok && cache_ok) then exit 1

(* ---------- entry point ---------- *)

let run rate requests warmup duration socket serve_bin jobs replicas result_cache replica_bench
    deadline_ms grid structures json_path =
  if rate <= 0.0 then begin
    Format.eprintf "cdr_load: --rate must be positive@.";
    exit 2
  end;
  if requests < 1 then begin
    Format.eprintf "cdr_load: --requests must be >= 1@.";
    exit 2
  end;
  if warmup < 0 then begin
    Format.eprintf "cdr_load: --warmup must be >= 0@.";
    exit 2
  end;
  match replica_bench with
  | Some n when n < 2 ->
      Format.eprintf "cdr_load: --replica-bench must be >= 2@.";
      exit 2
  | Some n -> replica_bench_run ~n ~serve_bin ~grid ~json_path
  | None ->
      let spawn_args =
        (match jobs with Some j -> [ "--jobs"; string_of_int j ] | None -> [])
        @ (match replicas with Some r -> [ "--replicas"; string_of_int r ] | None -> [])
        @
        match result_cache with
        | Some c -> [ "--result-cache"; string_of_int c ]
        | None -> []
      in
      let s =
        run_session ~rate ~requests ~warmup ~duration ~socket ~serve_bin ~spawn_args
          ~deadline_ms ~grid ~structures ()
      in
      let path = bench_path json_path in
      merge_section path "serve.load" (session_report ~rate s);
      print_session ~rate s;
      Format.printf "report merged into %s@." path;
      (* a lost response is a bug in the server's reply accounting; fail loudly *)
      if s.s_lost > 0 then begin
        Format.eprintf "cdr_load: %d requests were never answered@." s.s_lost;
        exit 1
      end

let cmd =
  let doc = "Open-loop load generator for the cdr_serve analysis service" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sends a deterministic mixed session (analyze/sweep/sigma/slip, rotating sparsity \
         structures) at a fixed target rate, without waiting for responses — so server-side \
         queueing shows up as client-side latency instead of being absorbed by the generator. \
         Reports throughput, per-kind latency percentiles (measured from each request's \
         scheduled send instant) and error-code counts, as one JSON section merged into the \
         BENCH report, plus the server's own \"stats\" snapshot taken at the end of the \
         session (with one row per worker replica when serving via --replicas).";
      `S Manpage.s_examples;
      `Pre "  \\$ cdr_load --rate 50 -n 200 --warmup 10 --json /tmp/load.json";
      `Pre "  \\$ cdr_load --duration 5 --rate 40 --replicas 4 --result-cache 256";
      `Pre "  \\$ cdr_load --replica-bench 4";
    ]
  in
  Cmd.v
    (Cmd.info "cdr_load" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ rate $ requests $ warmup $ duration $ socket $ serve_bin $ jobs $ replicas
      $ result_cache $ replica_bench $ deadline_ms $ grid $ structures $ json_path)

let () = exit (Cmd.eval cmd)

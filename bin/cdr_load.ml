(* Open-loop, deadline-aware load generator for cdr_serve.

   Replays a mixed analyze/sweep/sigma/slip session at a fixed target rate:
   each request has a scheduled send instant (t0 + i/rate) that does not
   depend on earlier responses, so a slow server cannot make the generator
   politely back off and hide the queueing it causes (no coordinated
   omission). Latency is measured from the scheduled instant to the
   response, on the monotonic clock.

   The server is either spawned as a child over stdio pipes (default; the
   binary is looked up next to cdr_load itself) or an already-running one is
   reached over its Unix-domain socket (--socket). After the session one
   "stats" request closes the loop: the server's own view of the run lands
   in the report next to the client-side percentiles. *)

open Cmdliner

let rate =
  let doc = "Target request rate in requests/second (open loop)." in
  Arg.(value & opt float 20.0 & info [ "rate" ] ~docv:"RPS" ~doc)

let requests =
  let doc = "Total number of requests to send." in
  Arg.(value & opt int 100 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let socket =
  let doc =
    "Connect to a running cdr_serve on this Unix-domain socket instead of spawning one."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_bin =
  let doc = "cdr_serve binary to spawn (ignored with --socket). Default: next to cdr_load." in
  Arg.(value & opt (some string) None & info [ "serve-bin" ] ~docv:"PATH" ~doc)

let jobs =
  let doc = "Worker domains for the spawned server's solver kernels." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let deadline_ms =
  let doc = "Per-request deadline_ms field; expired requests come back as timeout errors." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let grid =
  let doc = "Phase-error grid bins per request (problem size knob)." in
  Arg.(value & opt int 32 & info [ "grid" ] ~docv:"BINS" ~doc)

let structures =
  let doc =
    "Rotate the counter length through this many values (2, 3, ...): distinct counters give \
     distinct sparsity structures, exercising the server's setup cache and batcher."
  in
  Arg.(value & opt int 2 & info [ "structures" ] ~docv:"K" ~doc)

let json_path =
  let doc = "Write the machine-readable report here (default: $(b,CDR_BENCH_JSON) or BENCH.json)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

(* ---------- session construction ---------- *)

let mono () = Cdr_obs.Clock.monotonic ()

(* the canned mix: analyze-heavy, every solve kind present, deterministic *)
let kind_of_index i =
  match i mod 5 with 0 | 1 -> `Analyze | 2 -> `Sweep | 3 -> `Sigma | _ -> `Slip

let kind_name = function
  | `Analyze -> "analyze"
  | `Sweep -> "sweep"
  | `Sigma -> "sigma"
  | `Slip -> "slip"
  | `Stats -> "stats"

let request_line ~grid ~structures ~deadline_ms i =
  let kind = kind_of_index i in
  let counter = 2 + (i mod max 1 structures) in
  let base =
    [
      ("id", Cdr_obs.Jsonl.Str (Printf.sprintf "l%05d" i));
      ("kind", Cdr_obs.Jsonl.Str (kind_name kind));
    ]
  in
  let extras =
    match kind with
    | `Sweep -> [ ("lengths", Cdr_obs.Jsonl.List [ Num 2.; Num 4. ]) ]
    | `Sigma -> [ ("values", Cdr_obs.Jsonl.List [ Num 0.05; Num 0.06 ]) ]
    | _ -> []
  in
  let deadline =
    match deadline_ms with Some ms -> [ ("deadline_ms", Cdr_obs.Jsonl.Num ms) ] | None -> []
  in
  let params =
    Cdr_obs.Jsonl.Obj
      [
        ("grid", Num (float_of_int grid));
        ("phases", Num 16.);
        ("counter", Num (float_of_int counter));
      ]
  in
  ( kind_name kind,
    Cdr_obs.Jsonl.to_string
      (Cdr_obs.Jsonl.Obj (base @ extras @ deadline @ [ ("params", params) ])) )

(* ---------- transports ---------- *)

let default_serve_bin () =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "cdr_serve.exe" in
  if Sys.file_exists beside then beside
  else Filename.concat (Filename.dirname Sys.executable_name) "cdr_serve"

let open_channels ~socket ~serve_bin ~jobs =
  match socket with
  | Some path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, None)
  | None ->
      let bin = match serve_bin with Some b -> b | None -> default_serve_bin () in
      let args =
        Array.of_list
          (bin :: (match jobs with Some j -> [ "--jobs"; string_of_int j ] | None -> []))
      in
      let ic, oc = Unix.open_process_args bin args in
      (ic, oc, Some (ic, oc))

(* ---------- response accounting ---------- *)

type outcome = { o_kind : string; o_code : string; o_latency : float }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let run rate requests socket serve_bin jobs deadline_ms grid structures json_path =
  if rate <= 0.0 then begin
    Format.eprintf "cdr_load: --rate must be positive@.";
    exit 2
  end;
  if requests < 1 then begin
    Format.eprintf "cdr_load: --requests must be >= 1@.";
    exit 2
  end;
  let ic, oc, child = open_channels ~socket ~serve_bin ~jobs in
  (* id -> (kind, scheduled send instant); latency is measured from the
     schedule, not the (possibly late) actual write *)
  let table : (string, string * float) Hashtbl.t = Hashtbl.create (2 * requests) in
  let mu = Mutex.create () in
  let outcomes = ref [] in
  let server_stats = ref Cdr_obs.Jsonl.Null in
  let expected = requests + 1 (* the trailing stats request *) in
  let receiver =
    Thread.create
      (fun () ->
        let seen = ref 0 in
        (try
           while !seen < expected do
             let line = input_line ic in
             let now = mono () in
             match Cdr_obs.Jsonl.of_string line with
             | exception Failure _ -> ()
             | json ->
                 let id =
                   Option.bind (Cdr_obs.Jsonl.member "id" json) Cdr_obs.Jsonl.to_str
                 in
                 let code =
                   match Cdr_obs.Jsonl.member "ok" json with
                   | Some (Cdr_obs.Jsonl.Bool true) -> "ok"
                   | _ -> (
                       match
                         Option.bind
                           (Option.bind (Cdr_obs.Jsonl.member "error" json)
                              (Cdr_obs.Jsonl.member "code"))
                           Cdr_obs.Jsonl.to_str
                       with
                       | Some c -> c
                       | None -> "unparseable")
                 in
                 Option.iter
                   (fun id ->
                     Mutex.lock mu;
                     (match Hashtbl.find_opt table id with
                     | Some ("stats", _) ->
                         incr seen;
                         server_stats :=
                           Option.value ~default:Cdr_obs.Jsonl.Null
                             (Cdr_obs.Jsonl.member "result" json)
                     | Some (kind, scheduled) ->
                         incr seen;
                         outcomes :=
                           { o_kind = kind; o_code = code; o_latency = now -. scheduled }
                           :: !outcomes
                     | None -> ());
                     Hashtbl.remove table id;
                     Mutex.unlock mu)
                   id
           done
         with End_of_file -> ()))
      ()
  in
  let t0 = mono () in
  for i = 0 to requests - 1 do
    let kind, line = request_line ~grid ~structures ~deadline_ms i in
    let scheduled = t0 +. (float_of_int i /. rate) in
    let now = mono () in
    if scheduled > now then Unix.sleepf (scheduled -. now);
    Mutex.lock mu;
    Hashtbl.replace table (Printf.sprintf "l%05d" i) (kind, scheduled);
    Mutex.unlock mu;
    output_string oc line;
    output_char oc '\n';
    flush oc
  done;
  (* close the loop: the server reports its own view of the session *)
  Mutex.lock mu;
  Hashtbl.replace table "finalstats" ("stats", mono ());
  Mutex.unlock mu;
  output_string oc "{\"id\":\"finalstats\",\"kind\":\"stats\"}\n";
  flush oc;
  (* EOF drains the stdio server; a socket server just sees the connection
     close after the last response *)
  (match child with
  | Some _ -> close_out oc
  | None -> (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND with _ -> ()));
  Thread.join receiver;
  let wall = mono () -. t0 in
  (match child with Some (ic, oc) -> ignore (Unix.close_process (ic, oc)) | None -> ());
  (* ---------- report ---------- *)
  let outcomes = !outcomes in
  let responses = List.length outcomes in
  let by_kind : (string, float list ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let errors : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let lats, oks =
        match Hashtbl.find_opt by_kind o.o_kind with
        | Some cell -> cell
        | None ->
            let cell = (ref [], ref 0) in
            Hashtbl.add by_kind o.o_kind cell;
            cell
      in
      lats := o.o_latency :: !lats;
      if o.o_code = "ok" then incr oks
      else begin
        match Hashtbl.find_opt errors o.o_code with
        | Some r -> incr r
        | None -> Hashtbl.add errors o.o_code (ref 1)
      end)
    outcomes;
  let kind_rows =
    Hashtbl.fold
      (fun kind (lats, oks) acc ->
        let sorted = Array.of_list !lats in
        Array.sort compare sorted;
        ( kind,
          Cdr_obs.Jsonl.Obj
            [
              ("count", Num (float_of_int (Array.length sorted)));
              ("ok", Num (float_of_int !oks));
              ("p50_s", Num (percentile sorted 0.50));
              ("p95_s", Num (percentile sorted 0.95));
              ("p99_s", Num (percentile sorted 0.99));
              ("max_s", Num (percentile sorted 1.0));
            ] )
        :: acc)
      by_kind []
    |> List.sort compare
  in
  let error_rows =
    Hashtbl.fold (fun code r acc -> (code, Cdr_obs.Jsonl.Num (float_of_int !r)) :: acc) errors []
    |> List.sort compare
  in
  let throughput = if wall > 0.0 then float_of_int responses /. wall else 0.0 in
  let report =
    Cdr_obs.Jsonl.Obj
      [
        ("tool", Str "cdr_load");
        ("rate_target_rps", Num rate);
        ("requests_sent", Num (float_of_int requests));
        ("responses", Num (float_of_int responses));
        ("wall_s", Num wall);
        ("throughput_rps", Num throughput);
        ("kinds", Obj kind_rows);
        ("errors", Obj error_rows);
        ("server_stats", !server_stats);
      ]
  in
  let path =
    match json_path with
    | Some p -> p
    | None -> (
        match Sys.getenv_opt "CDR_BENCH_JSON" with Some p -> p | None -> "BENCH.json")
  in
  let out = open_out path in
  output_string out (Cdr_obs.Jsonl.to_string report);
  output_char out '\n';
  close_out out;
  Format.printf "cdr_load: %d requests at %.1f rps target -> %d responses in %.2fs (%.1f rps)@."
    requests rate responses wall throughput;
  List.iter
    (fun (kind, row) ->
      let f name = Option.bind (Cdr_obs.Jsonl.member name row) Cdr_obs.Jsonl.to_float in
      let v name = Option.value ~default:Float.nan (f name) in
      Format.printf "  %-8s n=%-4.0f ok=%-4.0f p50=%.4fs p95=%.4fs p99=%.4fs@." kind
        (v "count") (v "ok") (v "p50_s") (v "p95_s") (v "p99_s"))
    kind_rows;
  if error_rows <> [] then
    Format.printf "  errors: %s@."
      (String.concat ", "
         (List.map
            (fun (c, n) ->
              Printf.sprintf "%s=%d" c
                (int_of_float (Option.value ~default:0.0 (Cdr_obs.Jsonl.to_float n))))
            error_rows));
  Format.printf "report written to %s@." path;
  (* a lost response is a bug in the server's reply accounting; fail loudly *)
  if responses < requests then begin
    Format.eprintf "cdr_load: %d of %d requests were never answered@." (requests - responses)
      requests;
    exit 1
  end

let cmd =
  let doc = "Open-loop load generator for the cdr_serve analysis service" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sends a deterministic mixed session (analyze/sweep/sigma/slip, rotating sparsity \
         structures) at a fixed target rate, without waiting for responses — so server-side \
         queueing shows up as client-side latency instead of being absorbed by the generator. \
         Reports throughput, per-kind latency percentiles (measured from each request's \
         scheduled send instant) and error-code counts, as one JSON object, plus the server's \
         own \"stats\" snapshot taken at the end of the session.";
      `S Manpage.s_examples;
      `Pre "  \\$ cdr_load --rate 50 -n 200 --json /tmp/load.json";
    ]
  in
  Cmd.v
    (Cmd.info "cdr_load" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ rate $ requests $ socket $ serve_bin $ jobs $ deadline_ms $ grid $ structures
      $ json_path)

let () = exit (Cmd.eval cmd)

(* JSON-lines analysis server: one request per input line, one response per
   line back. Stdin/stdout by default, a Unix-domain stream socket with
   --socket. See Cdr_svc.Protocol for the request/response format. *)

open Cmdliner

let socket =
  let doc =
    "Serve on a Unix-domain stream socket bound at $(docv) (removed on exit) instead of \
     stdin/stdout. Each connection speaks the same line protocol; all connections share one \
     solve loop, solver cache and domain pool."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_bound =
  let doc =
    "Maximum number of admitted-but-not-yet-executing requests. Requests beyond the bound are \
     refused immediately with an $(b,overloaded) error instead of queuing unboundedly."
  in
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for the solver kernels (parallelism lives inside a request; requests \
     execute one at a time). Default: serial."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let default_deadline_ms =
  let doc =
    "Deadline applied to requests that carry no $(b,deadline_ms) field, in milliseconds from \
     admission. Expired requests are answered with a $(b,timeout) error; the server keeps \
     serving."
  in
  Arg.(value & opt (some float) None & info [ "default-deadline-ms" ] ~docv:"MS" ~doc)

let summary =
  let doc =
    "On exit, print the metrics registry (request counts, latency histograms, queue depth, \
     solver-cache hit/miss/eviction counters) to stderr."
  in
  Arg.(value & flag & info [ "summary" ] ~doc)

let run socket queue_bound jobs default_deadline_ms summary =
  if queue_bound < 1 then begin
    Format.eprintf "cdr_serve: --queue-bound must be >= 1@.";
    exit 2
  end;
  (match jobs with
  | Some j when j < 1 ->
      Format.eprintf "cdr_serve: --jobs must be >= 1@.";
      exit 2
  | _ -> ());
  Cdr_obs.Sink.init_from_env ();
  let cfg = { Cdr_svc.Server.queue_bound; jobs; default_deadline_ms } in
  (match socket with
  | None -> Cdr_svc.Server.run_stdio cfg
  | Some path -> Cdr_svc.Server.run_socket ~path cfg);
  if summary then Format.eprintf "%a@." Cdr_obs.Metrics.pp ();
  Cdr_obs.Sink.close_all ()

let cmd =
  let doc = "Long-running JSON-lines analysis service for the CDR stochastic analysis" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line and writes one JSON response per line. Request kinds: \
         $(b,analyze) (stationary density, BER, cycle-slip time), $(b,sweep) (BER vs counter \
         length), $(b,sigma) (BER vs eye-opening jitter), $(b,slip) (cycle-slip measures). \
         Same-structure requests arriving together are batched so they share one cached \
         multigrid setup and in-place model rebuilds.";
      `P
        "SIGTERM (or end of input in stdio mode) drains every admitted request, answers each, \
         and exits 0.";
      `S Manpage.s_examples;
      `Pre
        "  \\$ echo '{\"id\":\"r1\",\"kind\":\"analyze\",\"params\":{\"grid\":64}}' | cdr_serve";
    ]
  in
  Cmd.v
    (Cmd.info "cdr_serve" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ socket $ queue_bound $ jobs $ default_deadline_ms $ summary)

let () = exit (Cmd.eval cmd)

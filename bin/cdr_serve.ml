(* JSON-lines analysis server: one request per input line, one response per
   line back. Stdin/stdout by default, a Unix-domain stream socket with
   --socket. See Cdr_svc.Protocol for the request/response format.

   --replicas N turns this process into an acceptor/router that forks N
   worker replicas of itself (each re-executed with --replica-worker) and
   routes requests by rendezvous hash of their structure key; --result-cache
   layers a params-keyed response memoization cache in front of solving. *)

open Cmdliner

let socket =
  let doc =
    "Serve on a Unix-domain stream socket bound at $(docv) (removed on exit) instead of \
     stdin/stdout. Each connection speaks the same line protocol; all connections share one \
     solve loop, solver cache and domain pool."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_bound =
  let doc =
    "Maximum number of admitted-but-not-yet-executing requests. Requests beyond the bound are \
     refused immediately with an $(b,overloaded) error instead of queuing unboundedly. With \
     $(b,--replicas) the bound applies per replica (the router keeps at most $(docv) requests \
     in flight on each worker)."
  in
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for the solver kernels (parallelism lives inside a request; requests \
     execute one at a time). Default: serial. With $(b,--replicas) each worker replica gets \
     its own pool of $(docv) domains."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let default_deadline_ms =
  let doc =
    "Deadline applied to requests that carry no $(b,deadline_ms) field, in milliseconds from \
     admission. Expired requests are answered with a $(b,timeout) error; the server keeps \
     serving."
  in
  Arg.(value & opt (some float) None & info [ "default-deadline-ms" ] ~docv:"MS" ~doc)

let replicas =
  let doc =
    "Fork $(docv) worker replica processes and route requests to them by rendezvous hash of \
     their parameter structure key, so each replica's solver caches stay hot for the keys it \
     owns. A crashed replica is respawned and its in-flight requests are answered with \
     $(b,internal) errors; requests are re-routed to survivors meanwhile. Default: 1 (serve \
     in-process, no router)."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc)

let result_cache =
  let doc =
    "Memoize full responses keyed on the canonical parameter encoding: a repeated identical \
     request (same kind, payload and params, no $(b,hold_ms)) is answered from the cache, \
     byte-identical to the cold solve. With $(b,--replicas) the cache lives in the router and \
     is shared by all replicas. $(docv) bounds the entry count (LRU)."
  in
  Arg.(value & opt (some int) None & info [ "result-cache" ] ~docv:"CAP" ~doc)

let persist =
  let doc =
    "Persist the result cache to $(docv): load it on startup (a missing file is an empty \
     cache) and write it back on clean shutdown. Implies $(b,--result-cache) with its default \
     capacity unless one is given."
  in
  Arg.(value & opt (some string) None & info [ "persist" ] ~docv:"PATH" ~doc)

let replica_worker =
  let doc =
    "Internal: run as worker replica number $(docv) under a router (stdio transport, metrics \
     labeled $(b,replica)=$(docv)). Spawned by $(b,--replicas); not meant to be used directly."
  in
  Arg.(value & opt (some int) None & info [ "replica-worker" ] ~docv:"I" ~doc)

let summary =
  let doc =
    "On exit, print the metrics registry (request counts, latency histograms, queue depth, \
     solver-cache hit/miss/eviction counters) to stderr."
  in
  Arg.(value & flag & info [ "summary" ] ~doc)

let run socket queue_bound jobs default_deadline_ms replicas result_cache persist replica_worker
    summary =
  if queue_bound < 1 then begin
    Format.eprintf "cdr_serve: --queue-bound must be >= 1@.";
    exit 2
  end;
  if replicas < 1 then begin
    Format.eprintf "cdr_serve: --replicas must be >= 1@.";
    exit 2
  end;
  (match jobs with
  | Some j when j < 1 ->
      Format.eprintf "cdr_serve: --jobs must be >= 1@.";
      exit 2
  | _ -> ());
  (match result_cache with
  | Some c when c < 1 ->
      Format.eprintf "cdr_serve: --result-cache must be >= 1@.";
      exit 2
  | _ -> ());
  Cdr_obs.Sink.init_from_env ();
  let results =
    match (result_cache, persist, replica_worker) with
    | _, _, Some _ -> None (* workers never memoize; the router does *)
    | None, None, None -> None
    | capacity, Some path, None -> Some (Cdr_svc.Result_cache.load ?capacity path)
    | Some capacity, None, None -> Some (Cdr_svc.Result_cache.create ~capacity ())
  in
  let cfg =
    { Cdr_svc.Server.queue_bound; jobs; default_deadline_ms; replica = None; results }
  in
  (match replica_worker with
  | Some r -> Cdr_svc.Replica.run ~replica:r cfg
  | None -> (
      let service =
        if replicas > 1 then Cdr_svc.Router.create ~replicas cfg
        else Cdr_svc.Server.local_service cfg
      in
      match socket with
      | None -> Cdr_svc.Server.run_stdio_service service
      | Some path -> Cdr_svc.Server.run_socket_service ~path service));
  (match (results, persist) with
  | Some rc, Some path -> Cdr_svc.Result_cache.save rc path
  | _ -> ());
  if summary then Format.eprintf "%a@." Cdr_obs.Metrics.pp ();
  Cdr_obs.Sink.close_all ()

let cmd =
  let doc = "Long-running JSON-lines analysis service for the CDR stochastic analysis" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line and writes one JSON response per line. Request kinds: \
         $(b,analyze) (stationary density, BER, cycle-slip time), $(b,sweep) (BER vs counter \
         length), $(b,sigma) (BER vs eye-opening jitter), $(b,slip) (cycle-slip measures). \
         Same-structure requests arriving together are batched so they share one cached \
         multigrid setup and in-place model rebuilds.";
      `P
        "With $(b,--replicas N) the process becomes an acceptor/router over N forked worker \
         replicas: requests sharing a parameter structure always land on the same replica \
         (rendezvous hashing), a $(b,stats) request aggregates every replica's snapshot, and \
         $(b,--result-cache) shares one response memoization cache across all of them.";
      `P
        "SIGTERM (or end of input in stdio mode) drains every admitted request, answers each, \
         and exits 0.";
      `S Manpage.s_examples;
      `Pre
        "  \\$ echo '{\"id\":\"r1\",\"kind\":\"analyze\",\"params\":{\"grid\":64}}' | cdr_serve";
      `Pre "  \\$ cdr_serve --socket /tmp/cdr.sock --replicas 4 --result-cache 512";
    ]
  in
  Cmd.v
    (Cmd.info "cdr_serve" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ socket $ queue_bound $ jobs $ default_deadline_ms $ replicas $ result_cache
      $ persist $ replica_worker $ summary)

let () = exit (Cmd.eval cmd)

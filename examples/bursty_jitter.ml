(* Bursty jitter: why the composed environment model matters.

   A two-regime Markov-modulated environment (quiet / crosstalk burst that
   doubles the eye-opening jitter) is composed with the CDR chain, and the
   exact regime-weighted BER is compared against the naive mixture
   approximation — each regime solved standalone, BERs weighted by the
   environment's stationary distribution. In the slow-switching limit the
   two agree (the CDR re-equilibrates within each dwell); under fast
   switching they do not: the loop never settles into either regime's
   stationary law, and the mixture misestimates the BER.

   Run with: dune exec examples/bursty_jitter.exe *)

let analyze ~p_enter ~p_exit cfg =
  let env = Cdr_env.Env.bursty ~p_enter ~p_exit () in
  let composed = Cdr_env.Composed.build env cfg in
  let solution = Cdr_env.Composed.solve composed in
  let pi = solution.Markov.Solution.pi in
  let composed_ber = Cdr_env.Composed.ber composed ~pi in
  let _, mixture = Cdr_env.Composed.mixture_ber composed in
  (env, composed, pi, composed_ber, mixture)

let () =
  let cfg = Cdr.Config.default in
  Format.printf "Base configuration:@.%a@.@." Cdr.Config.pp cfg;

  (* same regimes, same stationary dwell fractions (p_enter/p_exit ratio is
     fixed), only the switching speed changes *)
  let cases =
    [
      ("slow switching (dwell ~10^4 bits)", 2e-5, 1e-4);
      ("moderate switching (dwell ~100 bits)", 2e-3, 1e-2);
      ("fast switching (dwell ~5 bits)", 0.05, 0.25);
    ]
  in
  List.iter
    (fun (label, p_enter, p_exit) ->
      let env, composed, pi, composed_ber, mixture = analyze ~p_enter ~p_exit cfg in
      let probs = Cdr_env.Composed.regime_probs composed ~pi in
      Format.printf "%s@." label;
      Format.printf "  env %s: %d regimes, %d composed states@." env.Cdr_env.Env.name
        (Cdr_env.Env.n_regimes env) composed.Cdr_env.Composed.n_states;
      Format.printf "  P(burst)      = %.4f@." probs.(1);
      Format.printf "  composed BER  = %.6e   (exact: env (x) CDR stationary law)@." composed_ber;
      Format.printf "  mixture BER   = %.6e   (naive: per-regime solve, weighted)@." mixture;
      Format.printf "  mixture error = %+.1f%%@.@."
        ((mixture -. composed_ber) /. composed_ber *. 100.))
    cases;
  Format.printf
    "The mixture approximation holds only when regime dwell times dwarf the@.loop's \
     re-equilibration time; burst noise on real links switches too fast@.for that, which is what \
     the composed model is for.@."

.PHONY: all build test test-par fmt check bench-telemetry bench-scaling bench-json bench-smoke kron-smoke bench-kron bench-env bench-ladder serve-smoke bench-load load-smoke replica-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The Cdr_par suite on a multi-domain pool: CDR_JOBS=4 makes the default
# pool size 4 even on single-core CI hosts, so the determinism assertions
# (jobs=1 vs jobs=4 bitwise) and the obs hammers really cross domains.
test-par:
	CDR_JOBS=4 dune exec test/test_par.exe

fmt:
	dune build @fmt

# Everything CI needs: the build, formatting (dune files; the container has
# no ocamlformat), the full test suite, the parallel suite under a forced
# multi-domain pool, and the multi-replica serving smoke (routing, worker
# kill/respawn, result-cache persistence).
check: build fmt test test-par kron-smoke replica-smoke

# Quick end-to-end telemetry smoke: the solver-telemetry bench section with
# JSONL events streamed to a file.
bench-telemetry:
	CDR_OBS=jsonl:/tmp/cdr_bench_events.jsonl dune exec bench/main.exe -- telemetry

# Machine-readable benchmark summary: every performance section — the
# deterministic smoke counters, solver telemetry, domain-pool scaling
# (including the colored-smoother V-cycle), warm-vs-cold continuation and
# the Bechamel kernel microbenches — with per-section wall times, metric
# counter deltas, gauge values (kernel ns/run, colored-multigrid wall
# times), the job count and the smoother choice, written to BENCH.json
# (path overridable via CDR_BENCH_JSON).
bench-json:
	dune exec bench/main.exe -- smoke telemetry parallel scaling warm env kernels

# CI bench smoke: the tiny deterministic section plus the MG-SCALING gate.
# Counter deltas are exact integers and wall seconds are never asserted —
# except the one scaling regression this PR exists to prevent: mg.speedup_j4
# must clear 1.0 (or 0.9 on a single-core host, where the multi-worker pool
# can only be asked to cost nothing); the section folds that policy into the
# mg.speedup_j4_ok gauge, so the guard greps a boolean, not a float.
bench-smoke:
	CDR_BENCH_JSON=/tmp/bench.json dune exec bench/main.exe -- smoke scaling
	grep -q '"model.builds{via=direct}":1' /tmp/bench.json
	grep -q '"model.solves{solver=multigrid}":3' /tmp/bench.json
	grep -q '"model.rebuilds{pattern=reused}":1' /tmp/bench.json
	grep -q '"solver_cache.hits":2' /tmp/bench.json
	grep -q '"solver_cache.misses":1' /tmp/bench.json
	grep -q '"mg.speedup_j4_ok":1' /tmp/bench.json
	@echo "bench smoke: counter deltas and the jobs=4 scaling gate as expected"

# CI kron smoke: the matrix-free backend solving a 208,896-state chain that
# was never materialized, asserted structurally from the JSON (state count,
# finite residual, non-negative stationary mass — never wall times), then an
# end-to-end agreement check: cdr_analyze with --backend kron must print the
# same BER headline as --backend csr on the same config.
kron-smoke: build
	CDR_BENCH_JSON=/tmp/bench_kron_smoke.json dune exec bench/main.exe -- kron-smoke
	grep -q '"bench.kron_smoke_states":208896' /tmp/bench_kron_smoke.json
	grep -q '"bench.kron_smoke_ok":1' /tmp/bench_kron_smoke.json
	dune exec bin/cdr_analyze.exe -- analyze --grid 64 --backend kron | grep '^COUNTER' > /tmp/kron_ber.txt
	dune exec bin/cdr_analyze.exe -- analyze --grid 64 --backend csr | grep '^COUNTER' > /tmp/csr_ber.txt
	cmp /tmp/kron_ber.txt /tmp/csr_ber.txt
	@echo "kron smoke: matrix-free solve verified, backends agree"

# ENV-SCALING: 2- and 4-regime Markov-modulated environments composed with
# the CDR chain on the default grid (CSR/kron backend parity of the
# regime-weighted BER), plus the >=1e6-state composed rung through the
# matrix-free backend reporting regime-conditional densities. The section
# folds its assertions into the env.ladder_ok boolean gauge, so the guard
# greps a boolean, not floats or wall times.
bench-env:
	CDR_BENCH_JSON=/tmp/bench_env.json dune exec bench/main.exe -- env
	grep -q '"env.ladder_ok":1' /tmp/bench_env.json
	@echo "env ladder: backend parity and the 1e6-state composed rung as expected"

# The full KRON-SCALING ladder: build + apply cost and the avoided-CSR
# footprint at grids 256..2048 (up to ~2M states), plus a beyond-the-wall
# stationary solve at the first >=1e6-state rung. Takes minutes; gauges land
# in BENCH.json (path overridable via CDR_BENCH_JSON).
bench-kron:
	dune exec bench/main.exe -- kron

# The MG-LADDER: W-cycle multigrid solves on one model family at grids
# 128..1056 (65k to just past 1e6 reachable states), asserting near-grid-
# independent cycle counts (top rung within 2x of the bottom rung's).
# Takes minutes; gauges land in BENCH.json (path via CDR_BENCH_JSON).
bench-ladder:
	dune exec bench/main.exe -- ladder

# End-to-end serving smoke: a canned mixed JSONL session through cdr_serve's
# stdio mode (every request kind plus malformed input), then deterministic
# deadline-timeout, queue-overload and SIGTERM-drain checks. Assertions are
# structural (ids, error codes, cache-hit counters) — never wall times.
serve-smoke: build
	bash scripts/serve_smoke.sh

# Domain-pool scaling: sweep + SpMV wall times at jobs 1/2/4/8. On a
# single-core host expect speedup <= 1; the point there is the bit-identical
# column staying "identical". The V-cycle part runs under the pool profiler
# and prints per-phase wall-time attribution plus the top overhead phase.
bench-scaling:
	dune exec bench/main.exe -- parallel

# Load benchmark: an open-loop mixed session (analyze/sweep/sigma/slip at a
# fixed target rate) through a spawned cdr_serve, then the replica
# throughput experiment (1 vs 4 replicas at a saturating rate, plus a
# repeated-query session against the shared result cache). Both sections
# merge into the repo-root BENCH.json (path overridable via CDR_BENCH_JSON)
# without clobbering the solver sections. The speedup and cache gates fold
# their core-count-aware policy into boolean gauges, so the guard greps
# booleans, not floats: serve.replica_speedup must clear 2x on a >=4-core
# host (1.2x on 2-3 cores, 0.85x single-core, mirroring mg.speedup_j4_ok),
# at equal error rates; the repeated-query session must exceed a 50% hit
# rate with hit p95 at least 10x below the cold-solve p95.
bench-load: build
	dune exec bin/cdr_load.exe -- --rate 50 -n 100 --warmup 10 --grid 32 --structures 3
	dune exec bin/cdr_load.exe -- --replica-bench 4 --grid 16
	grep -q '"serve.replica_speedup_ok":1' $${CDR_BENCH_JSON:-BENCH.json}
	grep -q '"serve.result_cache_ok":1' $${CDR_BENCH_JSON:-BENCH.json}
	@echo "bench-load: throughput multiplier and result-cache gates as expected"

# CI replica smoke: scripts/replica_smoke.sh — a mixed session through a
# 2-replica router with the shared result cache, a worker killed -9
# mid-session (respawn observed, zero hung requests, only structured
# internal/overloaded errors), and a persistence round-trip replaying a
# response byte-identically across a server restart.
replica-smoke: build
	bash scripts/replica_smoke.sh

# CI load smoke: a short cdr_load session plus structural assertions on the
# JSON report (response accounting, percentile fields, embedded server
# stats, deadline-induced timeouts) — never wall times or rates.
load-smoke: build
	bash scripts/load_smoke.sh

clean:
	dune clean

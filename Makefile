.PHONY: all build test fmt check bench-telemetry clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Everything CI needs: the build, formatting (dune files; the container has
# no ocamlformat), and the full test suite including the cdr_obs suite.
check: build fmt test

# Quick end-to-end telemetry smoke: the solver-telemetry bench section with
# JSONL events streamed to a file.
bench-telemetry:
	CDR_OBS=jsonl:/tmp/cdr_bench_events.jsonl dune exec bench/main.exe -- telemetry

clean:
	dune clean
